#include "core/orthogonal.hpp"

#include <gtest/gtest.h>

#include "topology/kary_ncube.hpp"

namespace mlvl {
namespace {

Placement grid_placement(NodeId n, std::uint32_t cols) {
  Placement p;
  p.cols = cols;
  p.rows = (n + cols - 1) / cols;
  p.row_of.resize(n);
  p.col_of.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    p.row_of[u] = u / cols;
    p.col_of[u] = u % cols;
  }
  return p;
}

TEST(Orthogonal, GreedyClassifiesEdges) {
  // 2x2 grid with one row edge, one column edge, one diagonal (extra).
  Graph g(4);
  g.add_edge(0, 1);  // row 0
  g.add_edge(0, 2);  // col 0
  g.add_edge(0, 3);  // diagonal
  Orthogonal2Layer o = orthogonal_greedy(std::move(g), grid_placement(4, 2));
  EXPECT_EQ(o.kind[0], EdgeKind::kRow);
  EXPECT_EQ(o.kind[1], EdgeKind::kCol);
  EXPECT_EQ(o.kind[2], EdgeKind::kExtra);
  ASSERT_EQ(o.extras.size(), 1u);
  EXPECT_EQ(o.extras[0].hband, 0u);  // u = node 0, row 0
  EXPECT_EQ(o.extras[0].vband, 1u);  // v = node 3, col 1
  EXPECT_TRUE(o.is_valid());
}

TEST(Orthogonal, GreedyTracksPerBand) {
  // A row with 3 pairwise-overlapping edges needs 3 tracks in that band.
  Graph g(8);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(0, 3);
  Orthogonal2Layer o = orthogonal_greedy(std::move(g), grid_placement(8, 4));
  EXPECT_EQ(o.row_tracks[0], 3u);
  EXPECT_EQ(o.row_tracks[1], 0u);
  EXPECT_TRUE(o.is_valid());
}

TEST(Orthogonal, ComposeProductBuildsTorus) {
  CollinearResult row = collinear_kary(3, 1);
  CollinearResult col = collinear_kary(3, 1);
  Orthogonal2Layer o = compose_product(row, col);
  EXPECT_EQ(o.graph.num_nodes(), 9u);
  EXPECT_EQ(o.graph.num_edges(), 18u);  // 3 rows * 3 + 3 cols * 3
  EXPECT_TRUE(o.is_valid());
  // Every band got the ring's 2 tracks.
  for (std::uint32_t t : o.row_tracks) EXPECT_EQ(t, 2u);
  for (std::uint32_t t : o.col_tracks) EXPECT_EQ(t, 2u);
  // The composed graph is the 3-ary 2-cube.
  Graph torus = topo::make_kary_ncube(3, 2);
  EXPECT_EQ(o.graph.num_edges(), torus.num_edges());
}

TEST(Orthogonal, AddExtraEdge) {
  CollinearResult row = collinear_kary(3, 1);
  CollinearResult col = collinear_kary(3, 1);
  Orthogonal2Layer o = compose_product(row, col);
  const EdgeId e = o.add_extra_edge(0, 8);
  EXPECT_EQ(o.kind[e], EdgeKind::kExtra);
  EXPECT_EQ(o.extras.back().edge, e);
  EXPECT_EQ(o.extras.back().hband, o.place.row_of[0]);
  EXPECT_EQ(o.extras.back().vband, o.place.col_of[8]);
  EXPECT_TRUE(o.is_valid());
}

TEST(Orthogonal, MaxTracksAccessors) {
  Graph g(8);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(4, 7);
  Orthogonal2Layer o = orthogonal_greedy(std::move(g), grid_placement(8, 4));
  EXPECT_EQ(o.max_row_tracks(), 2u);
  EXPECT_EQ(o.max_col_tracks(), 0u);
}

TEST(Orthogonal, ValidityCatchesTrackOverflow) {
  Graph g(4);
  g.add_edge(0, 1);
  Orthogonal2Layer o = orthogonal_greedy(std::move(g), grid_placement(4, 2));
  o.track[0] = 7;  // beyond row_tracks[0]
  EXPECT_FALSE(o.is_valid());
}

}  // namespace
}  // namespace mlvl
