// Focused reproduction tests for every numbered closed form in the paper,
// at sizes where the arithmetic is exact — the tightest regression net for
// the reproduction itself. Each test names the paper location it pins down.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "core/checker.hpp"
#include "core/collinear.hpp"
#include "core/metrics.hpp"
#include "layout/folded_hc_layout.hpp"
#include "layout/ghc_layout.hpp"
#include "layout/hypercube_layout.hpp"
#include "layout/kary_layout.hpp"

namespace mlvl {
namespace {

// --- Sec. 3.1: f_k(n) = 2 (k^n - 1)/(k - 1) -------------------------------

TEST(PaperSec31, CollinearRecurrenceFixedPoints) {
  // f_k(n+1) = k f_k(n) + 2, checked as the recurrence, not the closed form.
  for (std::uint32_t k : {3u, 5u, 7u}) {
    std::uint64_t f = 2;
    for (std::uint32_t n = 2; n <= 3; ++n) {
      f = k * f + 2;
      EXPECT_EQ(kary_track_formula(k, n), f) << "k=" << k << " n=" << n;
      EXPECT_EQ(collinear_kary(k, n).layout.num_tracks, f);
    }
  }
}

TEST(PaperSec31, TracksPerLayerMatchCeiling) {
  // "the number of tracks per layer above a row is ceil(4 (k^{n/2}-1) /
  //  (L (k-1)))" — our per-band split must reproduce it exactly.
  const std::uint32_t k = 3, n = 4, L = 6;
  Orthogonal2Layer o = layout::layout_kary(k, n);
  MultilayerLayout ml = realize(o, {.L = L});
  const std::uint64_t f = kary_track_formula(k, n / 2);  // 8
  const std::uint64_t per_layer = (f + L / 2 - 1) / (L / 2);
  EXPECT_EQ(ml.wiring_height, o.place.rows * per_layer);
}

// --- Sec. 4.1: f_r(n) = (N-1) floor(r^2/4) / (r-1) -------------------------

TEST(PaperSec41, GhcRecurrence) {
  for (std::uint32_t r : {4u, 6u, 9u}) {
    std::uint64_t f = r * r / 4;
    for (std::uint32_t n = 2; n <= 2; ++n) {
      f = r * f + r * r / 4;
      EXPECT_EQ(ghc_track_formula(std::vector<std::uint32_t>(n, r)), f);
    }
  }
}

TEST(PaperSec41, GhcAreaIsExactlyPaperAtPowersOfTwo) {
  // r^2 N^2 / (4 L^2): exact whenever the track counts divide the groups.
  for (std::uint32_t r : {4u, 8u}) {
    Orthogonal2Layer o = layout::layout_ghc(r, 2);
    const std::uint64_t N = o.graph.num_nodes();
    for (std::uint32_t L : {2u, 4u}) {
      MultilayerLayout ml = realize(o, {.L = L});
      const double paper = double(r) * r * N * N / (4.0 * L * L);
      EXPECT_DOUBLE_EQ(double(ml.wiring_width) * ml.wiring_height, paper)
          << "r=" << r << " L=" << L;
    }
  }
}

// --- Sec. 5.1: floor(2N/3) tracks, 2-track 2-cube basis --------------------

TEST(PaperSec51, HypercubeRecurrences) {
  // Even n: f(n) = 4 f(n-2) + 2; odd n: f(n) = 2 f(n-1) + 1.
  std::uint64_t f2 = 2;
  for (std::uint32_t n = 4; n <= 12; n += 2) {
    f2 = 4 * f2 + 2;
    EXPECT_EQ(hypercube_track_formula(n), f2) << "n=" << n;
    EXPECT_EQ(hypercube_track_formula(n + 1), 2 * f2 + 1) << "n odd";
  }
}

TEST(PaperSec51, TwoCubeBasisIsFigureFour) {
  // The 2-cube basis: 4-cycle in 2 tracks with the 0,1,3,2 ordering.
  CollinearResult r = collinear_hypercube(2);
  EXPECT_EQ(r.layout.num_tracks, 2u);
  EXPECT_EQ(r.layout.order[0], 0u);
  EXPECT_EQ(r.layout.order[1], 1u);
  EXPECT_EQ(r.layout.order[2], 3u);
  EXPECT_EQ(r.layout.order[3], 2u);
}

// --- Sec. 2.2: the L^2/4 / L/2 reduction factors ---------------------------

TEST(PaperSec22, ReductionFactorsExactOnDivisibleTracks) {
  Orthogonal2Layer o = layout::layout_ghc(8, 2);  // 16 tracks per band
  MultilayerLayout m2 = realize(o, {.L = 2});
  for (std::uint32_t L : {4u, 8u, 16u}) {
    MultilayerLayout ml = realize(o, {.L = L});
    const double area_red =
        double(m2.wiring_width) * m2.wiring_height /
        (double(ml.wiring_width) * ml.wiring_height);
    EXPECT_DOUBLE_EQ(area_red, double(L) * L / 4.0) << "L=" << L;
    const double vol_red = area_red * 2 / L;
    EXPECT_DOUBLE_EQ(vol_red, L / 2.0) << "L=" << L;
  }
}

// --- Sec. 1: optimality against the bisection bound ------------------------

TEST(PaperSec1, GhcMeetsThompsonBound) {
  for (std::uint32_t r : {4u, 8u, 16u}) {
    Orthogonal2Layer o = layout::layout_ghc(r, 2);
    MultilayerLayout ml = realize(o, {.L = 2});
    const std::uint64_t B = analysis::ghc_bisection(r, 2);
    EXPECT_EQ(std::uint64_t(ml.wiring_width) * ml.wiring_height, B * B)
        << "r=" << r;
  }
}

// --- Sec. 5.3: the extra-track accounting ----------------------------------

TEST(PaperSec53, FoldedHypercubeHasHalfNExtras) {
  Orthogonal2Layer o = layout::layout_folded_hypercube(6);
  EXPECT_EQ(o.extras.size(), 32u);  // N/2 diameter links
}

}  // namespace
}  // namespace mlvl
