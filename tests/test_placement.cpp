#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/collinear.hpp"

namespace mlvl {
namespace {

TEST(Placement, ProductPlacementBasic) {
  // 2 x 3 grid: low factor size 3 (columns), high factor size 2 (rows).
  Placement p = product_placement(6, 3, {0, 1, 2}, {0, 1});
  EXPECT_EQ(p.rows, 2u);
  EXPECT_EQ(p.cols, 3u);
  EXPECT_TRUE(p.is_valid(6));
  EXPECT_EQ(p.row_of[4], 1u);  // node 4 = hi 1, lo 1
  EXPECT_EQ(p.col_of[4], 1u);
}

TEST(Placement, RespectsFactorPositions) {
  // Low factor permuted: label 0 at column 2, label 1 at 0, label 2 at 1.
  Placement p = product_placement(3, 3, {2, 0, 1}, {0});
  EXPECT_EQ(p.col_of[0], 2u);
  EXPECT_EQ(p.col_of[1], 0u);
  EXPECT_EQ(p.col_of[2], 1u);
  EXPECT_TRUE(p.is_valid(3));
}

TEST(Placement, RejectsBadSizes) {
  EXPECT_THROW(product_placement(7, 3, {0, 1, 2}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(product_placement(6, 3, {0, 1}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(product_placement(6, 0, {}, {}), std::invalid_argument);
}

TEST(Placement, ValidityDetectsCollision) {
  Placement p = product_placement(4, 2, {0, 1}, {0, 1});
  p.col_of[1] = 0;  // two nodes at (0, 0)
  EXPECT_FALSE(p.is_valid(4));
}

TEST(Placement, ValidityDetectsOutOfRange) {
  Placement p = product_placement(4, 2, {0, 1}, {0, 1});
  p.row_of[0] = 9;
  EXPECT_FALSE(p.is_valid(4));
}

TEST(Placement, MatchesPaperDigitSplit) {
  // Sec. 3.1: for a k-ary n-cube, i = high ceil(n/2) digits, j = low digits.
  // Composing with identity factor layouts must reproduce exactly that.
  const std::uint32_t k = 3, n_low = 2;
  CollinearResult low = collinear_kary(k, n_low);
  CollinearResult high = collinear_kary(k, 1);
  Placement p = product_placement(27, 9, low.layout.pos, high.layout.pos);
  for (NodeId u = 0; u < 27; ++u) {
    EXPECT_EQ(p.col_of[u], low.layout.pos[u % 9]);
    EXPECT_EQ(p.row_of[u], high.layout.pos[u / 9]);
  }
}

}  // namespace
}  // namespace mlvl
