// Flight recorder: profiler math on hand-built span sets (exclusive time
// under nesting, critical path, per-thread utilization), the Chrome-trace
// round trip, and the unified run report schema.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checker.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "core/multilayer.hpp"
#include "layout/hypercube_layout.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/run_context.hpp"
#include "obs/run_report.hpp"

namespace {

using namespace mlvl;

obs::ProfileEvent ev(const char* name, std::uint64_t ts, std::uint64_t dur,
                     std::uint32_t tid) {
  obs::ProfileEvent e;
  e.name = name;
  e.ts_us = ts;
  e.dur_us = dur;
  e.tid = tid;
  return e;
}

const obs::PhaseStats* phase(const obs::ProfileReport& rep,
                             const std::string& name) {
  for (const obs::PhaseStats& p : rep.phases)
    if (p.name == name) return &p;
  return nullptr;
}

const obs::ThreadStats* thread_stats(const obs::ProfileReport& rep,
                                     std::uint32_t tid) {
  for (const obs::ThreadStats& t : rep.threads)
    if (t.tid == tid) return &t;
  return nullptr;
}

// ------------------------------------------------------- exclusive time

TEST(Profile, ExclusiveTimeWithNestingAcrossThreads) {
  // tid 0: A[0,100) > { B[10,40) > C[15,20), D[50,80) }; tid 1: E[0,60).
  std::vector<obs::ProfileEvent> events = {
      ev("A", 0, 100, 0), ev("B", 10, 30, 0), ev("C", 15, 5, 0),
      ev("D", 50, 30, 0), ev("E", 0, 60, 1),
  };
  obs::ProfileReport rep = obs::profile_events(events, "t1");

  EXPECT_EQ(rep.run_id, "t1");
  EXPECT_EQ(rep.events, 5u);
  EXPECT_EQ(rep.wall_us, 100u);

  ASSERT_NE(phase(rep, "A"), nullptr);
  EXPECT_EQ(phase(rep, "A")->incl_us, 100u);
  EXPECT_EQ(phase(rep, "A")->excl_us, 40u);  // 100 - B(30) - D(30)
  EXPECT_EQ(phase(rep, "B")->excl_us, 25u);  // 30 - C(5)
  EXPECT_EQ(phase(rep, "C")->excl_us, 5u);
  EXPECT_EQ(phase(rep, "D")->excl_us, 30u);
  EXPECT_EQ(phase(rep, "E")->excl_us, 60u);  // other thread: independent

  // Per-thread self times are a partition of the thread's busy time.
  const obs::ThreadStats* t0 = thread_stats(rep, 0);
  const obs::ThreadStats* t1 = thread_stats(rep, 1);
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t0->busy_us, 100u);  // only the root counts
  EXPECT_EQ(t0->self_us, 100u);  // 40 + 25 + 5 + 30
  EXPECT_EQ(t0->label, "main");
  EXPECT_EQ(t1->busy_us, 60u);
  EXPECT_EQ(t1->label, "worker-1");
  EXPECT_LE(t0->self_us, rep.wall_us);
  EXPECT_LE(t1->self_us, rep.wall_us);
}

// --------------------------------------------------------- critical path

TEST(Profile, CriticalPathOnKnownTree) {
  // A[0,100) with children B(dur 30, child B1 dur 8) and D(dur 40, child
  // D1 dur 30): the path must descend A -> D -> D1.
  std::vector<obs::ProfileEvent> events = {
      ev("A", 0, 100, 0),  ev("B", 10, 30, 0), ev("B1", 12, 8, 0),
      ev("D", 50, 40, 0),  ev("D1", 55, 30, 0),
  };
  obs::ProfileReport rep = obs::profile_events(events, "t2");
  ASSERT_EQ(rep.critical_path.size(), 3u);
  EXPECT_EQ(rep.critical_path[0].name, "A");
  EXPECT_EQ(rep.critical_path[1].name, "D");
  EXPECT_EQ(rep.critical_path[2].name, "D1");
  EXPECT_EQ(rep.critical_path[1].dur_us, 40u);
  EXPECT_EQ(rep.critical_path[1].excl_us, 10u);  // 40 - 30
}

// ---------------------------------------------------------- utilization

TEST(Profile, UtilizationOnSyntheticTwoThreadTrace) {
  // tid 0 busy [0,100), tid 1 busy [100,160): wall 160, utilization
  // 0.625 / 0.375 — idle time is visible, busy never exceeds wall.
  std::vector<obs::ProfileEvent> events = {
      ev("A", 0, 100, 0),
      ev("E", 100, 60, 1),
  };
  obs::ProfileReport rep = obs::profile_events(events, "t3");
  EXPECT_EQ(rep.wall_us, 160u);
  const obs::ThreadStats* t0 = thread_stats(rep, 0);
  const obs::ThreadStats* t1 = thread_stats(rep, 1);
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  EXPECT_DOUBLE_EQ(t0->utilization, 100.0 / 160.0);
  EXPECT_DOUBLE_EQ(t1->utilization, 60.0 / 160.0);
  for (const obs::ThreadStats& t : rep.threads) {
    EXPECT_LE(t.busy_us, rep.wall_us);
    EXPECT_LE(t.self_us, rep.wall_us);
  }
}

// -------------------------------------------------------- slowest jobs

TEST(Profile, TopKSlowestJobsCarryTheirArgs) {
  std::vector<obs::ProfileEvent> events;
  for (int i = 1; i <= 3; ++i) {
    obs::ProfileEvent e =
        ev("engine.job", std::uint64_t(i) * 100, std::uint64_t(i) * 10, 0);
    e.args = {{"spec", "hypercube(n=" + std::to_string(i) + ")"},
              {"L", std::to_string(i)},
              {"verdict", "ok"},
              {"worker", "2"},
              {"attempt", "1"}};
    events.push_back(std::move(e));
  }
  obs::ProfileOptions opt;
  opt.top_k = 2;
  obs::ProfileReport rep = obs::profile_events(events, "t4", opt);
  ASSERT_EQ(rep.slowest_jobs.size(), 2u);  // capped at top_k
  EXPECT_EQ(rep.slowest_jobs[0].spec, "hypercube(n=3)");  // slowest first
  EXPECT_EQ(rep.slowest_jobs[0].dur_us, 30u);
  EXPECT_EQ(rep.slowest_jobs[0].L, 3u);
  EXPECT_EQ(rep.slowest_jobs[0].verdict, "ok");
  EXPECT_EQ(rep.slowest_jobs[0].worker, 2u);
  EXPECT_EQ(rep.slowest_jobs[0].attempt, 1u);
  EXPECT_EQ(rep.slowest_jobs[1].spec, "hypercube(n=2)");
}

// ----------------------------------------------------------- round trip

TEST(Profile, RoundTripThroughWrittenChromeTrace) {
  obs::set_run_id("round-trip-run");
  obs::TraceSession session;
  session.install();
  {
    obs::Span job("engine.job");
    job.arg("spec", "hypercube(n=4)").arg("L", std::uint64_t{4})
        .arg("verdict", "ok");
    obs::Span inner("routing");
  }
  std::thread worker([] { obs::Span span("check"); });
  worker.join();
  obs::TraceSession::uninstall();

  const obs::ProfileReport live = obs::profile_session(session);
  std::ostringstream os;
  session.write_chrome_trace(os);
  std::string err;
  std::optional<obs::ProfileReport> parsed =
      obs::profile_chrome_trace_text(os.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  // The re-parsed profile agrees with the live one exactly: same id, same
  // phase aggregates, same thread accounting, same job tags.
  EXPECT_EQ(parsed->run_id, "round-trip-run");
  EXPECT_EQ(parsed->run_id, live.run_id);
  EXPECT_EQ(parsed->events, live.events);
  EXPECT_EQ(parsed->wall_us, live.wall_us);
  ASSERT_EQ(parsed->phases.size(), live.phases.size());
  for (std::size_t i = 0; i < live.phases.size(); ++i) {
    EXPECT_EQ(parsed->phases[i].name, live.phases[i].name);
    EXPECT_EQ(parsed->phases[i].count, live.phases[i].count);
    EXPECT_EQ(parsed->phases[i].incl_us, live.phases[i].incl_us);
    EXPECT_EQ(parsed->phases[i].excl_us, live.phases[i].excl_us);
  }
  ASSERT_EQ(parsed->threads.size(), live.threads.size());
  for (std::size_t i = 0; i < live.threads.size(); ++i) {
    EXPECT_EQ(parsed->threads[i].busy_us, live.threads[i].busy_us);
    EXPECT_EQ(parsed->threads[i].self_us, live.threads[i].self_us);
  }
  ASSERT_EQ(parsed->slowest_jobs.size(), 1u);
  EXPECT_EQ(parsed->slowest_jobs[0].spec, "hypercube(n=4)");
  EXPECT_EQ(parsed->slowest_jobs[0].L, 4u);
  EXPECT_EQ(parsed->slowest_jobs[0].verdict, "ok");
}

TEST(Profile, RejectsNonTraceInput) {
  std::string err;
  EXPECT_FALSE(obs::profile_chrome_trace_text("not json", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(obs::profile_chrome_trace_text("{\"a\": 1}", &err).has_value());
  EXPECT_FALSE(
      obs::load_profile_chrome_trace("no_such_trace.json", &err).has_value());
}

// ------------------------------------------- real pipeline + invariants

TEST(Profile, PipelineSelfTimesSumToAtMostWall) {
  obs::TraceSession session;
  session.install();
  {
    Orthogonal2Layer o = layout::layout_hypercube(3);
    MultilayerLayout ml = realize(o, {.L = 4});
    CheckResult res = check_layout(o.graph, ml);
    ASSERT_TRUE(res.ok) << res.error;
  }
  obs::TraceSession::uninstall();

  obs::ProfileReport rep = obs::profile_session(session);
  EXPECT_TRUE(rep.has_phase("placement"));
  EXPECT_TRUE(rep.has_phase("interval"));
  EXPECT_TRUE(rep.has_phase("routing"));
  EXPECT_TRUE(rep.has_phase("check"));
  ASSERT_GT(rep.wall_us, 0u);
  // The acceptance invariant: per thread, exclusive times partition busy
  // time, and busy time can never exceed the trace wall time.
  std::uint64_t total_excl = 0;
  for (const obs::PhaseStats& p : rep.phases) total_excl += p.excl_us;
  std::uint64_t total_self = 0;
  for (const obs::ThreadStats& t : rep.threads) {
    EXPECT_LE(t.self_us, rep.wall_us);
    EXPECT_LE(t.busy_us, rep.wall_us);
    EXPECT_EQ(t.self_us, t.busy_us);  // self times partition the roots
    total_self += t.self_us;
  }
  EXPECT_EQ(total_excl, total_self);  // phase view and thread view agree
  EXPECT_FALSE(rep.critical_path.empty());
}

// ----------------------------------------------------- report emission

TEST(Profile, JsonReportIsWellFormed) {
  std::vector<obs::ProfileEvent> events = {ev("A", 0, 100, 0),
                                           ev("B", 10, 30, 0)};
  obs::ProfileReport rep = obs::profile_events(events, "json-run");
  std::ostringstream os;
  rep.write_json(os);
  std::optional<io::JsonValue> root = io::parse_json(os.str());
  ASSERT_TRUE(root.has_value()) << os.str();
  EXPECT_EQ(root->find("schema")->str, "mlvl-profile-v1");
  EXPECT_EQ(root->find("run_id")->str, "json-run");
  EXPECT_EQ(root->find("wall_us")->number, 100);
  ASSERT_EQ(root->find("phases")->items.size(), 2u);
  ASSERT_EQ(root->find("threads")->items.size(), 1u);
  EXPECT_EQ(root->find("threads")->items[0].find("label")->str, "main");

  std::ostringstream text;
  rep.write_text(text);
  EXPECT_NE(text.str().find("profile: run json-run"), std::string::npos);
  EXPECT_NE(text.str().find("critical path:"), std::string::npos);

  // Empty input: a zeroed, still well-formed report.
  obs::ProfileReport empty = obs::profile_events({}, "empty");
  std::ostringstream eos;
  empty.write_json(eos);
  EXPECT_TRUE(io::parse_json(eos.str()).has_value()) << eos.str();
}

TEST(RunReport, JsonMergesProfileMetricsAndSweepSections) {
  obs::RunReport rep;
  rep.run_id = "report-run";
  rep.env = obs::capture_build_env();
  rep.has_profile = true;
  rep.profile =
      obs::profile_events({ev("engine.sweep", 0, 50, 0)}, "report-run");

  obs::MetricsRegistry reg;
  reg.install();
  obs::counter_add("engine.jobs.completed", 6);
  obs::MetricsRegistry::uninstall();
  std::ostringstream mos;
  reg.write_json(mos);
  rep.metrics_json = mos.str();

  rep.sweep.present = true;
  rep.sweep.jobs = 6;
  rep.sweep.threads = 2;
  rep.sweep.wall_ms = 12.5;
  rep.sweep.busy_ms = 20.0;
  rep.sweep.utilization = 0.8;
  rep.sweep.verdicts = {{"ok", 5}, {"failed", 1}};
  rep.sweep.cache_hits = 4;
  rep.sweep.cache_misses = 2;
  rep.sweep.max_retries = 3;
  rep.sweep.cache_capacity = 64;

  std::ostringstream os;
  rep.write_json(os);
  std::optional<io::JsonValue> root = io::parse_json(os.str());
  ASSERT_TRUE(root.has_value()) << os.str();
  EXPECT_EQ(root->find("schema")->str, "mlvl-run-report-v1");
  EXPECT_EQ(root->find("run_id")->str, "report-run");
  EXPECT_GT(root->find("env")->find("cores")->number, 0);
  EXPECT_EQ(root->find("profile")->find("schema")->str, "mlvl-profile-v1");
  EXPECT_EQ(root->find("metrics")
                ->find("counters")
                ->find("engine.jobs.completed")
                ->number,
            6);
  const io::JsonValue* sweep = root->find("sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->find("jobs")->number, 6);
  EXPECT_EQ(sweep->find("verdicts")->find("ok")->number, 5);
  EXPECT_EQ(sweep->find("cache")->find("hits")->number, 4);
  EXPECT_EQ(sweep->find("governance")->find("max_retries")->number, 3);
  EXPECT_EQ(sweep->find("governance")->find("cache_capacity")->number, 64);

  std::ostringstream sum;
  rep.write_summary(sum);
  EXPECT_NE(sum.str().find("run report-run"), std::string::npos);
  EXPECT_NE(sum.str().find("5 ok / 1 other"), std::string::npos);

  // No profile / no metrics / no sweep: the nulls still parse.
  obs::RunReport bare;
  bare.run_id = "bare";
  std::ostringstream bos;
  bare.write_json(bos);
  std::optional<io::JsonValue> broot = io::parse_json(bos.str());
  ASSERT_TRUE(broot.has_value()) << bos.str();
  EXPECT_EQ(broot->find("profile")->kind, io::JsonValue::Kind::kNull);
  EXPECT_EQ(broot->find("sweep")->kind, io::JsonValue::Kind::kNull);
}

}  // namespace
