// Parameterized property sweeps: every (family instance, L) pair must
// produce checker-valid geometry whose wiring extents follow the exact
// ceil-arithmetic of the multilayer transform, and whose area never grows
// with more layers.
#include <gtest/gtest.h>

#include <numeric>

#include "core/checker.hpp"
#include "core/metrics.hpp"
#include "layout/ccc_layout.hpp"
#include "layout/ghc_layout.hpp"
#include "layout/hsn_layout.hpp"
#include "layout/hypercube_layout.hpp"
#include "layout/kary_layout.hpp"
#include "topology/ring.hpp"

namespace mlvl {
namespace {

struct KaryParam {
  std::uint32_t k, n, L;
};

class KarySweep : public testing::TestWithParam<KaryParam> {};

TEST_P(KarySweep, ValidAndExactBandArithmetic) {
  const auto [k, n, L] = GetParam();
  Orthogonal2Layer o = layout::layout_kary(k, n);
  MultilayerLayout ml = realize(o, {.L = L});
  CheckResult res = check_layout(o.graph, ml);
  ASSERT_TRUE(res.ok) << res.error;

  const std::uint32_t th = L / 2, tv = (L + 1) / 2;
  std::uint32_t wh = 0, ww = 0;
  for (std::uint32_t h : o.row_tracks) wh += (h + th - 1) / th;
  for (std::uint32_t w : o.col_tracks) ww += (w + tv - 1) / tv;
  EXPECT_EQ(ml.wiring_height, wh);
  EXPECT_EQ(ml.wiring_width, ww);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KarySweep,
    testing::Values(KaryParam{3, 2, 2}, KaryParam{3, 2, 4}, KaryParam{3, 2, 6},
                    KaryParam{3, 3, 2}, KaryParam{3, 3, 8}, KaryParam{4, 2, 3},
                    KaryParam{4, 2, 4}, KaryParam{4, 3, 4}, KaryParam{5, 2, 2},
                    KaryParam{5, 2, 10}, KaryParam{6, 2, 5},
                    KaryParam{7, 2, 4}, KaryParam{2, 4, 4}, KaryParam{8, 1, 2}),
    [](const testing::TestParamInfo<KaryParam>& info) {
      return "k" + std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n) + "L" + std::to_string(info.param.L);
    });

class HypercubeSweep : public testing::TestWithParam<std::uint32_t> {};

TEST_P(HypercubeSweep, TrackCountsMatchFormulaPerBand) {
  const std::uint32_t n = GetParam();
  Orthogonal2Layer o = layout::layout_hypercube(n);
  for (std::uint32_t h : o.row_tracks)
    EXPECT_EQ(h, hypercube_track_formula(n / 2));
  for (std::uint32_t w : o.col_tracks)
    EXPECT_EQ(w, hypercube_track_formula(n - n / 2));
  MultilayerLayout ml = realize(o, {.L = 4});
  CheckResult res = check_layout(o.graph, ml);
  EXPECT_TRUE(res.ok) << res.error;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HypercubeSweep, testing::Range(2u, 9u));

class GhcSweep
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(GhcSweep, WiringAreaWithinPaperConstant) {
  const auto [r, L] = GetParam();
  Orthogonal2Layer o = layout::layout_ghc(r, 2);
  MultilayerLayout ml = realize(o, {.L = L});
  ASSERT_TRUE(check_layout(o.graph, ml).ok);
  // Wiring-only area must sit within ~(1 + o(1)) of r^2 N^2 / (4 l2); the
  // ceil() rounding may push small instances above, hence the slack.
  const double N = o.graph.num_nodes();
  const double l2 = (L % 2 == 0) ? double(L) * L : double(L) * L - 1.0;
  const double paper = r * r * N * N / (4.0 * l2);
  const double measured = double(ml.wiring_width) * ml.wiring_height;
  EXPECT_LE(measured, paper * 1.6) << "r=" << r << " L=" << L;
  EXPECT_GE(measured, paper * 0.5) << "r=" << r << " L=" << L;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GhcSweep,
                         testing::Combine(testing::Values(3u, 4u, 5u, 6u),
                                          testing::Values(2u, 4u)));

class LayerSweep : public testing::TestWithParam<std::uint32_t> {};

TEST_P(LayerSweep, EveryFamilyValidAtThisL) {
  const std::uint32_t L = GetParam();
  {
    Orthogonal2Layer o = layout::layout_ccc(3);
    EXPECT_TRUE(check_layout(o.graph, realize(o, {.L = L})).ok) << "ccc";
  }
  {
    Orthogonal2Layer o = layout::layout_hsn(2, topo::make_ring(4));
    EXPECT_TRUE(check_layout(o.graph, realize(o, {.L = L})).ok) << "hsn";
  }
  {
    Orthogonal2Layer o = layout::layout_hypercube(4);
    EXPECT_TRUE(check_layout(o.graph, realize(o, {.L = L})).ok) << "hypercube";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LayerSweep, testing::Range(2u, 13u));

TEST(Properties, VolumeIsAreaTimesLayers) {
  for (std::uint32_t L : {2u, 4u, 6u, 8u}) {
    Orthogonal2Layer o = layout::layout_kary(4, 2);
    MultilayerLayout ml = realize(o, {.L = L});
    LayoutMetrics m = compute_metrics(ml, o.graph);
    EXPECT_EQ(m.volume, m.area * L);
  }
}

TEST(Properties, TotalWireIsSumOfEdgeLengths) {
  Orthogonal2Layer o = layout::layout_hypercube(5);
  MultilayerLayout ml = realize(o, {.L = 4});
  LayoutMetrics m = compute_metrics(ml, o.graph);
  const std::uint64_t sum =
      std::accumulate(m.edge_length.begin(), m.edge_length.end(), 0ull);
  EXPECT_EQ(m.total_wire_length, sum);
  EXPECT_EQ(m.edge_length[m.max_wire_edge], m.max_wire_length);
}

}  // namespace
}  // namespace mlvl
