#include <gtest/gtest.h>

#include <algorithm>

#include "core/ascii.hpp"
#include "core/checker.hpp"
#include "core/collinear.hpp"
#include "core/svg.hpp"
#include "layout/kary_layout.hpp"

namespace mlvl {
namespace {

TEST(Ascii, RingRender) {
  CollinearResult r = collinear_ring(4);
  const std::string art = render_collinear_ascii(r.graph, r.layout);
  // 2 track rows + 1 drop row + 1 label row.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('-'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('3'), std::string::npos);
}

TEST(Ascii, Figure2Render) {
  CollinearResult r = collinear_kary(3, 2);
  const std::string art = render_collinear_ascii(r.graph, r.layout);
  // 8 tracks + drop row + label row.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
}

TEST(Svg, ContainsGeometry) {
  Orthogonal2Layer o = layout::layout_kary(3, 2);
  MultilayerLayout ml = realize(o, {.L = 4});
  const std::string svg = render_svg(ml.geom);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per node box plus the background.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, o.graph.num_nodes() + 1);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(Svg, OptionsRespected) {
  Orthogonal2Layer o = layout::layout_kary(3, 2);
  MultilayerLayout ml = realize(o, {.L = 2});
  SvgOptions opt;
  opt.draw_vias = false;
  opt.label_nodes = false;
  const std::string svg = render_svg(ml.geom, opt);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(Svg, WriteToFile) {
  Orthogonal2Layer o = layout::layout_kary(3, 2);
  MultilayerLayout ml = realize(o, {.L = 2});
  const std::string path = testing::TempDir() + "/mlvl_test.svg";
  EXPECT_TRUE(write_svg(ml.geom, path));
  EXPECT_FALSE(write_svg(ml.geom, "/nonexistent-dir/x.svg"));
}

}  // namespace
}  // namespace mlvl
