// Rip-up and re-route repair: injected single-edge faults must come back
// checker-clean, frame violations must be reported unrepairable rather than
// papered over, and a genuinely unroutable edge must be reported as failed —
// graceful degradation, not silent success.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/checker.hpp"
#include "core/io.hpp"
#include "core/multilayer.hpp"
#include "layout/kary_layout.hpp"
#include "robustness/fault_injector.hpp"
#include "robustness/repair.hpp"

namespace mlvl {
namespace {

using robustness::FaultKind;

struct Fixture {
  Orthogonal2Layer o;
  MultilayerLayout ml;

  Fixture() : o(layout::layout_kary(3, 2)), ml(realize(o, {.L = 4})) {
    CheckResult res = check_layout(o.graph, ml);
    EXPECT_TRUE(res.ok) << res.error;
  }
};

TEST(Repair, ValidLayoutIsLeftAlone) {
  Fixture f;
  LayoutGeometry geom = f.ml.geom;
  auto rep = robustness::repair_layout(f.o.graph, geom,
                                       {.rule = f.ml.required_rule});
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.ripped.empty());
  EXPECT_TRUE(rep.rerouted.empty());
  EXPECT_TRUE(rep.failed.empty());
  EXPECT_TRUE(rep.unrepairable.empty());
  EXPECT_TRUE(rep.remaining.empty());
}

TEST(Repair, RepairsEverySingleEdgeFaultClass) {
  // Each of these operators damages the wiring of one or two edges without
  // touching the layout frame; repair must restore a checker-clean layout.
  const FaultKind kinds[] = {
      FaultKind::kShiftSegmentOffTrack, FaultKind::kSwapSegmentLayer,
      FaultKind::kRelabelSegment,       FaultKind::kDiagonalSegment,
      FaultKind::kDropVia,              FaultKind::kDuplicateViaForeign,
      FaultKind::kTruncateViaSpan,      FaultKind::kInvertViaSpan,
      FaultKind::kUnrouteEdge,
  };
  Fixture f;
  for (FaultKind k : kinds) {
    bool tried = false;
    for (std::uint64_t seed : {1ull, 2ull, 5ull, 13ull}) {
      LayoutGeometry geom = f.ml.geom;
      auto fault = robustness::inject(k, f.o.graph, geom, seed);
      if (!fault) continue;
      tried = true;
      ASSERT_FALSE(check_layout(f.o.graph, geom, f.ml.required_rule).ok)
          << robustness::fault_name(k);

      auto rep = robustness::repair_layout(f.o.graph, geom,
                                           {.rule = f.ml.required_rule});
      EXPECT_TRUE(rep.ok)
          << robustness::fault_name(k) << " seed " << seed << " ("
          << fault->note << "): " << rep.failed.size() << " failed, "
          << rep.remaining.size() << " remaining";
      CheckResult res = check_layout(f.o.graph, geom, f.ml.required_rule);
      EXPECT_TRUE(res.ok) << robustness::fault_name(k) << ": " << res.error;
      EXPECT_FALSE(rep.ripped.empty()) << robustness::fault_name(k);
      EXPECT_FALSE(rep.rerouted.empty()) << robustness::fault_name(k);
      EXPECT_TRUE(rep.unrepairable.empty()) << robustness::fault_name(k);
      break;  // one successful round-trip per fault class
    }
    EXPECT_TRUE(tried) << robustness::fault_name(k)
                       << " applied to no seed on this fixture";
  }
}

TEST(Repair, RepairsCompoundDamage) {
  Fixture f;
  LayoutGeometry geom = f.ml.geom;
  auto a = robustness::inject(FaultKind::kUnrouteEdge, f.o.graph, geom, 3);
  auto b = robustness::inject(FaultKind::kDropVia, f.o.graph, geom, 8);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  auto rep = robustness::repair_layout(f.o.graph, geom,
                                       {.rule = f.ml.required_rule});
  EXPECT_TRUE(rep.ok) << rep.remaining.size() << " remaining";
  EXPECT_GE(rep.rerouted.size(), 2u);
  EXPECT_TRUE(check_layout(f.o.graph, geom, f.ml.required_rule).ok);
}

TEST(Repair, FrameViolationsAreUnrepairable) {
  Fixture f;
  for (FaultKind k :
       {FaultKind::kOverlapNodeBoxes, FaultKind::kPushBoxOutOfBounds,
        FaultKind::kDuplicateNodeBox}) {
    LayoutGeometry geom = f.ml.geom;
    auto fault = robustness::inject(k, f.o.graph, geom, 1);
    ASSERT_TRUE(fault.has_value()) << robustness::fault_name(k);

    auto rep = robustness::repair_layout(f.o.graph, geom,
                                         {.rule = f.ml.required_rule});
    EXPECT_FALSE(rep.ok) << robustness::fault_name(k);
    ASSERT_FALSE(rep.unrepairable.empty()) << robustness::fault_name(k);
    // The declared code is among the frame violations (a duplicated box also
    // trips the count mismatch first, which is equally unrepairable).
    const bool declared = std::any_of(
        rep.unrepairable.begin(), rep.unrepairable.end(),
        [&](const Diagnostic& d) { return d.code == fault->expected; });
    EXPECT_TRUE(declared) << robustness::fault_name(k);
    // Re-routing never even starts: moving wires cannot fix the frame.
    EXPECT_TRUE(rep.rerouted.empty()) << robustness::fault_name(k);
    EXPECT_FALSE(rep.remaining.empty()) << robustness::fault_name(k);
  }
}

TEST(Repair, HonestlyReportsUnroutableEdge) {
  // A 4x1 single-layer strip: n1 and n2 sit between n0 and n3, the only edge
  // 0-3 is unrouted, and with L=1 there is no way around the foreign boxes.
  Graph g(4);
  g.add_edge(0, 3);
  LayoutGeometry geom;
  geom.num_layers = 1;
  geom.width = 4;
  geom.height = 1;
  geom.boxes = {{0, 0, 1, 1, 0, 1},
                {1, 0, 1, 1, 1, 1},
                {2, 0, 1, 1, 2, 1},
                {3, 0, 1, 1, 3, 1}};

  auto rep = robustness::repair_layout(g, geom, {.rule = ViaRule::kBlocking});
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.failed.size(), 1u);
  EXPECT_EQ(rep.failed[0], 0u);
  EXPECT_TRUE(rep.rerouted.empty());
  bool still_unrouted = false;
  for (const Diagnostic& d : rep.remaining)
    if (d.code == Code::kEdgeUnrouted && d.edge == 0) still_unrouted = true;
  EXPECT_TRUE(still_unrouted);
}

TEST(Repair, SameStripIsRoutableWithASecondLayer) {
  // The control for the blocked case above: one extra wiring layer gives the
  // router a way over the foreign boxes, and the repair must find it.
  Graph g(4);
  g.add_edge(0, 3);
  LayoutGeometry geom;
  geom.num_layers = 2;
  geom.width = 4;
  geom.height = 1;
  geom.boxes = {{0, 0, 1, 1, 0, 1},
                {1, 0, 1, 1, 1, 1},
                {2, 0, 1, 1, 2, 1},
                {3, 0, 1, 1, 3, 1}};

  auto rep = robustness::repair_layout(g, geom, {.rule = ViaRule::kBlocking});
  EXPECT_TRUE(rep.ok) << rep.remaining.size() << " remaining";
  ASSERT_EQ(rep.rerouted.size(), 1u);
  EXPECT_EQ(rep.rerouted[0], 0u);
  CheckResult res = check_layout(g, geom, ViaRule::kBlocking);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Repair, RepairedLayoutRoundTripsThroughSerialization) {
  Fixture f;
  LayoutGeometry geom = f.ml.geom;
  ASSERT_TRUE(
      robustness::inject(FaultKind::kUnrouteEdge, f.o.graph, geom, 11)
          .has_value());
  auto rep = robustness::repair_layout(f.o.graph, geom,
                                       {.rule = f.ml.required_rule});
  ASSERT_TRUE(rep.ok);

  std::ostringstream os;
  io::write_graph(os, f.o.graph);
  io::write_geometry(os, geom);
  std::istringstream is(os.str());
  DiagnosticSink sink;
  auto loaded = io::parse_layout(is, &sink);
  ASSERT_TRUE(loaded.has_value()) << sink.summary();
  CheckResult res = check_layout(loaded->graph, loaded->geom,
                                 f.ml.required_rule);
  EXPECT_TRUE(res.ok) << res.error;
}

}  // namespace
}  // namespace mlvl
