#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mlvl {
namespace {

TEST(Report, AlignsColumns) {
  analysis::Table t({"name", "value"});
  t.begin_row().cell("a").cell(std::uint64_t(1));
  t.begin_row().cell("longer-name").cell(std::uint64_t(123456));
  const std::string s = t.str();
  std::istringstream is(s);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_EQ(l1.size(), l3.size());
  EXPECT_EQ(l3.size(), l4.size());
  EXPECT_NE(l1.find("name"), std::string::npos);
  EXPECT_NE(l2.find("---"), std::string::npos);
  EXPECT_NE(l4.find("123456"), std::string::npos);
}

TEST(Report, DoubleFormatting) {
  analysis::Table t({"v"});
  t.begin_row().cell(3.14159, 2);
  t.begin_row().cell(2.0, 0);
  const std::string s = t.str();
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(s.find("3.142"), std::string::npos);
  EXPECT_NE(s.find("2\n"), std::string::npos);  // integral rendering, padded
}

TEST(Report, SignedAndUnsignedCells) {
  analysis::Table t({"a", "b", "c"});
  t.begin_row().cell(std::int64_t(-5)).cell(7u).cell(42);
  const std::string s = t.str();
  EXPECT_NE(s.find("-5"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Report, EmptyTableStillPrintsHeader) {
  analysis::Table t({"only", "headers"});
  const std::string s = t.str();
  EXPECT_NE(s.find("only"), std::string::npos);
  EXPECT_NE(s.find("headers"), std::string::npos);
}

TEST(Report, ShortRowsPadded) {
  analysis::Table t({"a", "b"});
  t.begin_row().cell("x");  // missing second cell
  EXPECT_NO_THROW({ const std::string s = t.str(); });
}

}  // namespace
}  // namespace mlvl
