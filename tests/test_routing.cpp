#include "analysis/routing.hpp"

#include <gtest/gtest.h>

#include "core/checker.hpp"
#include "core/metrics.hpp"
#include "layout/ghc_layout.hpp"
#include "topology/ring.hpp"

namespace mlvl {
namespace {

TEST(Routing, HopDistancesOnRing) {
  Graph g = topo::make_ring(8);
  auto d = analysis::hop_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
}

TEST(Routing, WireDistancesRespectLengths) {
  // Triangle with one expensive edge: Dijkstra prefers the two cheap hops.
  Graph g(3);
  g.add_edge(0, 1);  // len 10
  g.add_edge(1, 2);  // len 1
  g.add_edge(0, 2);  // len 1
  const std::uint32_t lens[] = {10, 1, 1};
  auto d = analysis::wire_distances(g, {lens, 3}, 0);
  EXPECT_EQ(d[1], 2u);  // via node 2
  EXPECT_EQ(d[2], 1u);
}

TEST(Routing, SizeMismatchThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  const std::uint32_t lens[] = {1, 2};
  EXPECT_THROW(analysis::wire_distances(g, {lens, 2}, 0), std::invalid_argument);
}

TEST(Routing, MaxPathWireExactSmall) {
  Graph g = topo::make_ring(6);
  std::vector<std::uint32_t> lens(g.num_edges(), 1);
  auto st = analysis::max_path_wire(g, lens);
  EXPECT_TRUE(st.exact);
  EXPECT_EQ(st.max_path_wire, 3u);  // ring diameter
  EXPECT_GT(st.mean_path_wire, 0.0);
}

TEST(Routing, SampledModeForLargeGraphs) {
  Graph g = topo::make_ring(64);
  std::vector<std::uint32_t> lens(g.num_edges(), 1);
  auto st = analysis::max_path_wire(g, lens, /*exact_limit=*/16, /*samples=*/8);
  EXPECT_FALSE(st.exact);
  EXPECT_GT(st.max_path_wire, 0u);
  EXPECT_LE(st.max_path_wire, 32u);
}

TEST(Traffic, RingLoadsAreBalanced) {
  Graph g = topo::make_ring(8);
  std::vector<std::uint32_t> lens(g.num_edges(), 1);
  auto st = analysis::edge_traffic(g, lens);
  EXPECT_TRUE(st.exact);
  // Vertex-transitive ring under uniform traffic: all edges near-equal.
  const std::uint64_t lo =
      *std::min_element(st.edge_load.begin(), st.edge_load.end());
  EXPECT_GT(lo, 0u);
  EXPECT_LE(st.max_load, lo + 8);  // odd-pair tie-breaks wobble slightly
}

TEST(Traffic, StarTopologyCentreCarriesAll) {
  Graph g(4);  // star: node 0 centre
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  std::vector<std::uint32_t> lens(g.num_edges(), 1);
  auto st = analysis::edge_traffic(g, lens);
  // Each leaf edge carries: 2 (to/from centre) + 2*2 (through) = 6.
  for (std::uint64_t l : st.edge_load) EXPECT_EQ(l, 6u);
}

TEST(Traffic, PrefersShortWires) {
  // Triangle with one expensive edge: traffic avoids it entirely.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const std::vector<std::uint32_t> lens = {100, 1, 1};
  auto st = analysis::edge_traffic(g, lens);
  EXPECT_EQ(st.edge_load[0], 0u);
  EXPECT_GT(st.edge_load[1], 0u);
}

TEST(Traffic, SampledModeOnLargeGraph) {
  Graph g = topo::make_ring(1024);
  std::vector<std::uint32_t> lens(g.num_edges(), 1);
  auto st = analysis::edge_traffic(g, lens, /*exact_limit=*/64, /*samples=*/4);
  EXPECT_FALSE(st.exact);
  EXPECT_GT(st.max_load, 0u);
}

TEST(Routing, PathWireShrinksWithLayers) {
  // Claim (4): total wire along routes shrinks ~L/2 on a GHC. r=16 keeps the
  // track bands (which compress with L) dominant over node boxes (which do
  // not), so the measured factor approaches the ideal 4.
  Orthogonal2Layer o = layout::layout_ghc(16, 2);
  MultilayerLayout m2 = realize(o, {.L = 2});
  MultilayerLayout m8 = realize(o, {.L = 8});
  LayoutMetrics x2 = compute_metrics(m2, o.graph);
  LayoutMetrics x8 = compute_metrics(m8, o.graph);
  auto p2 = analysis::max_path_wire(o.graph, x2.edge_length);
  auto p8 = analysis::max_path_wire(o.graph, x8.edge_length);
  const double factor = double(p2.max_path_wire) / double(p8.max_path_wire);
  EXPECT_GT(factor, 2.0);
  EXPECT_LT(factor, 4.5);
}

}  // namespace
}  // namespace mlvl
