// Resource governance and failure containment: deadlines yield structured
// verdicts (never hung workers), transient failures retry deterministically,
// the bounded LRU cache evicts cold entries and keeps hot ones, the crash
// journal round-trips every finished job, and a killed-and-resumed sweep is
// byte-identical to an uninterrupted one — all under injected chaos.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "engine/journal.hpp"
#include "engine/sweep.hpp"

namespace mlvl::engine {
namespace {

std::vector<SweepJob> hypercube_grid(std::uint32_t n_lo, std::uint32_t n_hi,
                                     std::uint32_t l_lo, std::uint32_t l_hi) {
  const api::FamilyRegistry& reg = api::FamilyRegistry::instance();
  std::vector<SweepJob> jobs;
  for (std::uint32_t n = n_lo; n <= n_hi; ++n) {
    std::optional<api::FamilySpec> spec =
        reg.parse("hypercube(n=" + std::to_string(n) + ")");
    for (std::uint32_t L = l_lo; L <= l_hi; ++L)
      jobs.push_back({*spec, {.L = L}});
  }
  return jobs;
}

/// Deterministic view of one result: excludes timings and cache_hit (which
/// job of a same-spec group builds is scheduling-dependent).
std::string fingerprint(const JobResult& j) {
  std::ostringstream os;
  os << api::format_family_spec(j.spec) << " L=" << j.L << " ok=" << j.ok
     << " verdict=" << verdict_name(j.verdict) << " err=" << j.error
     << " nodes=" << j.nodes << " edges=" << j.edges
     << " area=" << j.metrics.area << " vol=" << j.metrics.volume
     << " wire=" << j.metrics.total_wire_length
     << " vias=" << j.metrics.via_count;
  return os.str();
}

std::string fingerprint(const SweepReport& r) {
  std::ostringstream os;
  for (const JobResult& j : r.jobs) os << fingerprint(j) << "\n";
  return os.str();
}

/// RAII temp file: removed on scope exit so test reruns start clean.
struct TempFile {
  explicit TempFile(const char* name) : path(name) { std::remove(name); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---------------------------------------------------------------- verdicts

TEST(Governance, VerdictNamesRoundTrip) {
  for (JobVerdict v : {JobVerdict::kOk, JobVerdict::kRetried,
                       JobVerdict::kFailed, JobVerdict::kDeadline,
                       JobVerdict::kSkipped}) {
    JobVerdict back = JobVerdict::kOk;
    ASSERT_TRUE(verdict_from_name(verdict_name(v), back)) << verdict_name(v);
    EXPECT_EQ(back, v);
  }
  JobVerdict ignored = JobVerdict::kOk;
  EXPECT_FALSE(verdict_from_name("bogus", ignored));
  EXPECT_FALSE(verdict_from_name("", ignored));
}

// ------------------------------------------------------------------- retry

TEST(Governance, TransientFaultRetriesToSuccess) {
  // Every job's first attempt fails transiently; the second succeeds.
  std::vector<SweepJob> jobs = hypercube_grid(3, 4, 2, 3);
  SweepOptions opt;
  opt.threads = 2;
  opt.max_retries = 2;
  opt.retry_backoff_ms = 0;
  opt.inject_fault = [](std::size_t, std::uint32_t attempt) {
    return attempt == 1;
  };
  SweepReport r = run_sweep(jobs, opt);
  ASSERT_TRUE(r.all_ok());
  EXPECT_EQ(r.retry_attempts, jobs.size());
  for (const JobResult& j : r.jobs) {
    EXPECT_EQ(j.verdict, JobVerdict::kRetried) << fingerprint(j);
    EXPECT_EQ(j.attempts, 2u);
    EXPECT_GT(j.metrics.area, 0u);
  }
  EXPECT_EQ(r.totals().retried, jobs.size());
  EXPECT_EQ(r.totals().ok, jobs.size());
}

TEST(Governance, ExhaustedRetryBudgetFailsWithStructuredError) {
  std::vector<SweepJob> jobs = hypercube_grid(3, 3, 2, 2);
  SweepOptions opt;
  opt.threads = 1;
  opt.max_retries = 2;
  opt.retry_backoff_ms = 0;
  opt.inject_fault = [](std::size_t, std::uint32_t) { return true; };
  SweepReport r = run_sweep(jobs, opt);
  ASSERT_EQ(r.jobs.size(), 1u);
  const JobResult& j = r.jobs[0];
  EXPECT_FALSE(j.ok);
  EXPECT_EQ(j.verdict, JobVerdict::kFailed);
  EXPECT_EQ(j.attempts, 3u);  // 1 initial + 2 retries
  EXPECT_NE(j.error.find("transient failure persisted"), std::string::npos)
      << j.error;
  EXPECT_EQ(r.totals().failed, 1u);
}

TEST(Governance, RetriedResultsMatchUnfaultedRun) {
  // Chaos must not change what a successful job computes.
  std::vector<SweepJob> jobs = hypercube_grid(3, 5, 2, 3);
  SweepOptions chaos;
  chaos.threads = 4;
  chaos.max_retries = 3;
  chaos.retry_backoff_ms = 0;
  chaos.inject_fault = [](std::size_t job, std::uint32_t attempt) {
    return attempt == 1 && job % 2 == 0;  // half the jobs hiccup once
  };
  SweepReport faulted = run_sweep(jobs, chaos);
  SweepReport clean = run_sweep(jobs, {.threads = 1});
  ASSERT_TRUE(faulted.all_ok());
  ASSERT_EQ(faulted.jobs.size(), clean.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobResult& f = faulted.jobs[i];
    const JobResult& c = clean.jobs[i];
    EXPECT_EQ(f.metrics.area, c.metrics.area) << i;
    EXPECT_EQ(f.metrics.volume, c.metrics.volume) << i;
    EXPECT_EQ(f.metrics.total_wire_length, c.metrics.total_wire_length) << i;
    EXPECT_EQ(f.metrics.via_count, c.metrics.via_count) << i;
    EXPECT_EQ(f.verdict, i % 2 == 0 ? JobVerdict::kRetried : JobVerdict::kOk);
  }
}

// --------------------------------------------------------------- deadlines

TEST(Governance, JobDeadlineYieldsStructuredVerdictNotAHungWorker) {
  // A 1 ms budget on a 1024-node hypercube trips inside the pipeline; the
  // job comes back kDeadline with a phase-stamped error, and an unbudgeted
  // sibling in the same batch still succeeds.
  const api::FamilyRegistry& reg = api::FamilyRegistry::instance();
  std::vector<SweepJob> jobs;
  jobs.push_back({*reg.parse("hypercube(n=10)"), {.L = 2}});
  SweepOptions opt;
  opt.threads = 1;
  opt.job_deadline_ms = 1;
  SweepReport r = run_sweep(jobs, opt);
  ASSERT_EQ(r.jobs.size(), 1u);
  const JobResult& j = r.jobs[0];
  EXPECT_FALSE(j.ok);
  EXPECT_EQ(j.verdict, JobVerdict::kDeadline);
  EXPECT_NE(j.error.find("deadline exceeded"), std::string::npos) << j.error;
  EXPECT_NE(j.error.find("in phase"), std::string::npos) << j.error;
  EXPECT_EQ(r.totals().deadline, 1u);

  // The deadline is per job, not per engine: the next batch runs unbudgeted.
  SweepReport ok = run_sweep({{*reg.parse("hypercube(n=3)"), {.L = 2}}}, {});
  EXPECT_TRUE(ok.all_ok());
}

TEST(Governance, SweepDeadlineSkipsUnstartedJobs) {
  // One worker, a 1 ms whole-batch budget, and four slow jobs: the batch
  // cannot finish, and every job resolves as deadline or skipped — with the
  // tail deterministically skipped because the budget tripped before pickup.
  std::vector<SweepJob> jobs = hypercube_grid(9, 10, 2, 3);
  SweepOptions opt;
  opt.threads = 1;
  opt.sweep_deadline_ms = 1;
  SweepReport r = run_sweep(jobs, opt);
  ASSERT_EQ(r.jobs.size(), jobs.size());
  SweepTotals t = r.totals();
  EXPECT_EQ(t.ok, 0u);
  EXPECT_EQ(t.deadline + t.skipped, jobs.size());
  EXPECT_GE(t.skipped, 1u);  // the tail never started
  for (const JobResult& j : r.jobs) {
    EXPECT_FALSE(j.ok);
    EXPECT_TRUE(j.verdict == JobVerdict::kDeadline ||
                j.verdict == JobVerdict::kSkipped)
        << verdict_name(j.verdict);
    if (j.verdict == JobVerdict::kSkipped) {
      EXPECT_EQ(j.attempts, 0u);
    }
  }
  // A tripped sweep budget surfaces in the report's warnings.
  bool warned = false;
  for (const Diagnostic& d : r.warnings)
    if (d.code == Code::kSweepDeadline) warned = true;
  EXPECT_TRUE(warned);
}

TEST(Governance, ExternalCancelSkipsTheWholeBatch) {
  BatchLayoutEngine eng({.threads = 2});
  eng.request_cancel();  // shutdown before the batch: nothing should run
  SweepReport r = eng.run(hypercube_grid(3, 4, 2, 2));
  for (const JobResult& j : r.jobs) {
    EXPECT_EQ(j.verdict, JobVerdict::kSkipped) << verdict_name(j.verdict);
    EXPECT_EQ(j.attempts, 0u);
  }
}

// --------------------------------------------------------- bounded cache

TEST(Governance, HardCapacityEvictsLeastRecentlyUsed) {
  // 4 unique specs through a 2-entry cache: at least 2 evictions, and the
  // cache never holds more than its bound.
  SweepOptions opt;
  opt.threads = 1;
  opt.cache_capacity = 2;
  BatchLayoutEngine eng(opt);
  SweepReport r = eng.run(hypercube_grid(3, 6, 2, 2));
  ASSERT_TRUE(r.all_ok());
  EXPECT_EQ(r.cache_misses, 4u);
  EXPECT_GE(r.cache_evictions, 2u);
  EXPECT_LE(eng.cache_size(), 2u);
  EXPECT_LE(r.cache_entries, 2u);
}

TEST(Governance, RecentlyTouchedEntrySurvivesEviction) {
  SweepOptions opt;
  opt.threads = 1;
  opt.cache_capacity = 2;
  BatchLayoutEngine eng(opt);
  // Build A and B, then touch A so B is the LRU victim when C arrives.
  ASSERT_TRUE(eng.run(hypercube_grid(3, 4, 2, 2)).all_ok());  // A=n3, B=n4
  SweepReport touch = eng.run(hypercube_grid(3, 3, 2, 2));    // hit A
  EXPECT_EQ(touch.cache_hits, 1u);
  EXPECT_EQ(touch.cache_misses, 0u);
  ASSERT_TRUE(eng.run(hypercube_grid(5, 5, 2, 2)).all_ok());  // C evicts B
  SweepReport again = eng.run(hypercube_grid(3, 3, 2, 2));    // A still hot
  EXPECT_EQ(again.cache_hits, 1u);
  EXPECT_EQ(again.cache_misses, 0u);
  SweepReport rebuild = eng.run(hypercube_grid(4, 4, 2, 2));  // B was evicted
  EXPECT_EQ(rebuild.cache_misses, 1u);
}

TEST(Governance, SoftCapacityWarningReArmsEveryBatch) {
  // The tripwire is per sweep, not per process: a long-lived engine whose
  // cache sits over the soft limit warns on every batch, including an
  // all-hits batch that inserts nothing.
  SweepOptions opt;
  opt.threads = 1;
  opt.cache_soft_capacity = 1;
  BatchLayoutEngine eng(opt);
  const std::vector<SweepJob> jobs = hypercube_grid(3, 4, 2, 2);
  auto warned = [](const SweepReport& r) {
    for (const Diagnostic& d : r.warnings)
      if (d.code == Code::kCacheCapacity) return true;
    return false;
  };
  SweepReport first = eng.run(jobs);
  SweepReport second = eng.run(jobs);  // pure cache hits
  EXPECT_TRUE(warned(first));
  EXPECT_TRUE(warned(second));
  EXPECT_EQ(second.cache_misses, 0u);
}

// ----------------------------------------------------------------- journal

TEST(Journal, RoundTripsEveryFinishedJob) {
  TempFile tmp("test_soak_journal_roundtrip.mlvlj");
  std::vector<SweepJob> jobs = hypercube_grid(3, 4, 2, 3);
  SweepReport r;
  {
    SweepJournal journal(tmp.path);
    ASSERT_TRUE(journal.valid());
    SweepOptions opt;
    opt.threads = 2;
    opt.journal = &journal;
    r = run_sweep(jobs, opt);
    ASSERT_TRUE(r.all_ok());
    EXPECT_EQ(journal.recorded(), jobs.size());
  }
  std::optional<SweepResume> resume = SweepJournal::load(tmp.path);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->malformed_lines, 0u);
  EXPECT_EQ(resume->done.size(), jobs.size());
  for (const JobResult& j : r.jobs) {
    const JobResult* rec = resume->find(sweep_job_key(j.spec, j.L));
    ASSERT_NE(rec, nullptr) << sweep_job_key(j.spec, j.L);
    EXPECT_EQ(rec->verdict, j.verdict);
    EXPECT_EQ(rec->attempts, j.attempts);
    EXPECT_EQ(rec->nodes, j.nodes);
    EXPECT_EQ(rec->edges, j.edges);
    EXPECT_EQ(rec->metrics.area, j.metrics.area);
    EXPECT_EQ(rec->metrics.volume, j.metrics.volume);
    EXPECT_EQ(rec->metrics.total_wire_length, j.metrics.total_wire_length);
    EXPECT_EQ(rec->metrics.via_count, j.metrics.via_count);
    EXPECT_TRUE(rec->resumed);
  }
}

TEST(Journal, ErrorTextEscapesControlCharacters) {
  TempFile tmp("test_soak_journal_escape.mlvlj");
  const api::FamilyRegistry& reg = api::FamilyRegistry::instance();
  JobResult r;
  r.spec = *reg.parse("hypercube(n=3)");
  r.L = 2;
  r.verdict = JobVerdict::kFailed;
  r.attempts = 1;
  r.error = "tab\there\nnewline\\backslash";
  {
    SweepJournal journal(tmp.path);
    ASSERT_TRUE(journal.valid());
    journal.record(r);
  }
  std::optional<SweepResume> resume = SweepJournal::load(tmp.path);
  ASSERT_TRUE(resume.has_value());
  ASSERT_EQ(resume->malformed_lines, 0u);
  const JobResult* rec = resume->find(sweep_job_key(r.spec, r.L));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->error, r.error);
  EXPECT_EQ(rec->verdict, JobVerdict::kFailed);
  EXPECT_FALSE(rec->ok);
}

TEST(Journal, TornTrailingLineIsCountedNotFatal) {
  TempFile tmp("test_soak_journal_torn.mlvlj");
  {
    SweepJournal journal(tmp.path);
    SweepOptions opt;
    opt.threads = 1;
    opt.journal = &journal;
    ASSERT_TRUE(run_sweep(hypercube_grid(3, 3, 2, 3), opt).all_ok());
  }
  {  // simulate the torn tail a crash leaves: a record cut mid-write
    std::ofstream os(tmp.path, std::ios::app);
    os << "hypercube(n=9)|L=2\tverdict=ok\tattempts=1";  // no err= terminator
  }
  std::optional<SweepResume> resume = SweepJournal::load(tmp.path);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->malformed_lines, 1u);
  EXPECT_EQ(resume->done.size(), 2u);  // the intact records still load
  EXPECT_EQ(resume->find("hypercube(n=9)|L=2"), nullptr);
}

TEST(Journal, WrongHeaderAndMissingFileAreStructuredFailures) {
  DiagnosticSink sink;
  EXPECT_FALSE(SweepJournal::load("no_such_journal_file.mlvlj").has_value());
  TempFile tmp("test_soak_journal_badheader.mlvlj");
  {
    std::ofstream os(tmp.path);
    os << "some-other-format-v9\n";
  }
  EXPECT_FALSE(SweepJournal::load(tmp.path, &sink).has_value());
  bool diagnosed = false;
  for (const Diagnostic& d : sink.diagnostics())
    if (d.code == Code::kJournalError) diagnosed = true;
  EXPECT_TRUE(diagnosed);
}

// ------------------------------------------------------------------ resume

TEST(Resume, InterruptedSweepResumesByteIdentical) {
  // Run the first half of a grid with a journal (the "crash" happens after),
  // then resume the full grid against that journal: the combined output must
  // be byte-identical to one uninterrupted serial run, and the resumed half
  // must not re-execute.
  TempFile tmp("test_soak_resume.mlvlj");
  const std::vector<SweepJob> all = hypercube_grid(3, 5, 2, 3);
  const std::vector<SweepJob> half(all.begin(),
                                   all.begin() + std::ptrdiff_t(all.size() / 2));
  {
    SweepJournal journal(tmp.path);
    SweepOptions opt;
    opt.threads = 1;
    opt.journal = &journal;
    ASSERT_TRUE(run_sweep(half, opt).all_ok());
  }
  std::optional<SweepResume> resume = SweepJournal::load(tmp.path);
  ASSERT_TRUE(resume.has_value());
  ASSERT_EQ(resume->done.size(), half.size());

  SweepOptions opt;
  opt.threads = 1;
  opt.resume = &*resume;
  SweepReport resumed = run_sweep(all, opt);
  SweepReport uninterrupted = run_sweep(all, {.threads = 1});

  ASSERT_TRUE(resumed.all_ok());
  EXPECT_EQ(fingerprint(resumed), fingerprint(uninterrupted));
  EXPECT_EQ(resumed.resumed, half.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(resumed.jobs[i].resumed, i < half.size()) << i;
    // Resumed results carry the *recorded* attempt count, matching the run
    // they reproduce — not a fresh execution.
    EXPECT_EQ(resumed.jobs[i].attempts, uninterrupted.jobs[i].attempts) << i;
  }
}

TEST(Resume, PreflightFailuresReFailIdenticallyWithoutJournaling) {
  // A job rejected before reaching a worker (bad layer count) is not
  // journaled — re-deriving the validation failure on resume is free — but
  // a resumed run still reports it byte-identically to the original.
  TempFile tmp("test_soak_resume_fail.mlvlj");
  const api::FamilyRegistry& reg = api::FamilyRegistry::instance();
  std::vector<SweepJob> jobs;
  jobs.push_back({*reg.parse("hypercube(n=3)"), {.L = 1}});  // invalid L
  jobs.push_back({*reg.parse("hypercube(n=3)"), {.L = 2}});
  std::string original_error;
  {
    SweepJournal journal(tmp.path);
    SweepOptions opt;
    opt.threads = 1;
    opt.journal = &journal;
    SweepReport r = run_sweep(jobs, opt);
    EXPECT_FALSE(r.jobs[0].ok);
    original_error = r.jobs[0].error;
    EXPECT_EQ(journal.recorded(), 1u);  // only the worker-finished job
  }
  std::optional<SweepResume> resume = SweepJournal::load(tmp.path);
  ASSERT_TRUE(resume.has_value());
  ASSERT_EQ(resume->done.size(), 1u);
  SweepOptions opt;
  opt.threads = 1;
  opt.resume = &*resume;
  SweepReport r = run_sweep(jobs, opt);
  EXPECT_EQ(r.resumed, 1u);
  EXPECT_FALSE(r.jobs[0].ok);
  EXPECT_FALSE(r.jobs[0].resumed);  // re-failed live, not reproduced
  EXPECT_EQ(r.jobs[0].error, original_error);
  EXPECT_TRUE(r.jobs[1].ok);
  EXPECT_TRUE(r.jobs[1].resumed);
}

// -------------------------------------------------------------- chaos soak

TEST(Soak, GovernanceInvariantsHoldUnderInjectedChaos) {
  // A long-lived engine with a tight cache and deterministic fault injection:
  // across several batches every job must resolve to a coherent verdict, ok
  // results must carry real metrics, and a fresh serial engine must agree.
  const std::vector<SweepJob> jobs = hypercube_grid(3, 5, 2, 4);
  auto chaos = [](std::size_t job, std::uint32_t attempt) {
    // splitmix-style deterministic hash of (job, attempt), ~25% fault rate
    std::uint64_t x = (job * 1000003u) ^ (attempt * 0x9E3779B97F4A7C15ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    return x % 100 < 25;
  };
  SweepOptions opt;
  opt.threads = 4;
  opt.cache_capacity = 4;
  opt.max_retries = 3;
  opt.retry_backoff_ms = 0;
  opt.inject_fault = chaos;
  BatchLayoutEngine eng(opt);

  std::string first;
  for (int iter = 0; iter < 3; ++iter) {
    SweepReport r = eng.run(jobs);
    ASSERT_EQ(r.jobs.size(), jobs.size());
    for (const JobResult& j : r.jobs) {
      if (j.ok) {
        EXPECT_TRUE(j.verdict == JobVerdict::kOk ||
                    j.verdict == JobVerdict::kRetried);
        EXPECT_GT(j.metrics.area, 0u);
        EXPECT_GT(j.nodes, 0u);
      } else {
        EXPECT_EQ(j.verdict, JobVerdict::kFailed);
        EXPECT_FALSE(j.error.empty());
      }
      if (j.verdict == JobVerdict::kRetried) {
        EXPECT_GE(j.attempts, 2u);
      }
      EXPECT_LE(j.attempts, opt.max_retries + 1);
    }
    EXPECT_LE(eng.cache_size(), 4u);
    // Fault injection is a function of (job, attempt) only, so every
    // iteration — and any thread count — resolves identically.
    if (iter == 0)
      first = fingerprint(r);
    else
      EXPECT_EQ(fingerprint(r), first) << "iteration " << iter;
  }

  SweepOptions serial = opt;
  serial.threads = 1;
  serial.cache_capacity = 0;
  SweepReport replay = run_sweep(jobs, serial);
  EXPECT_EQ(fingerprint(replay), first);
}

}  // namespace
}  // namespace mlvl::engine
