// Multi-thread hammer suite for every internally synchronized component:
// MetricsRegistry counters/gauges/histograms, TraceSession span nesting
// across threads, OrthoCache get-or-build on colliding keys plus the
// CacheStats snapshot contract under contention, DiagnosticSink concurrent
// reporting, the CancelToken latch tree, the SweepJournal writer, the
// MetricsSampler shutdown handshake, and the annotated Mutex/CondVar
// wrappers themselves.
//
// These tests assert *exact* post-join totals (relaxed atomics never lose
// increments; mutexed maps never lose inserts) and monotonicity *during*
// contention. They are designed for the TSan CI lane (MLVL_TSAN=ON): any
// data race in the components under test is a report there, and any torn
// total fails the assertions in every build mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "core/cancel.hpp"
#include "core/checker.hpp"
#include "core/diagnostics.hpp"
#include "core/thread_annotations.hpp"
#include "engine/journal.hpp"
#include "engine/ortho_cache.hpp"
#include "layout/hypercube_layout.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mlvl {
namespace {

constexpr unsigned kThreads = 8;

/// Run `fn(t)` on kThreads threads and join them all.
template <typename Fn>
void run_threads(Fn fn, unsigned n = kThreads) {
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(fn, t);
  for (std::thread& th : pool) th.join();
}

// ---------------------------------------------------------- MetricsRegistry

TEST(ThreadingMetrics, CounterGaugeHistogramHammerKeepsExactTotals) {
  obs::MetricsRegistry reg;
  reg.install();
  constexpr std::uint64_t kOps = 2000;
  run_threads([&](unsigned t) {
    for (std::uint64_t i = 0; i < kOps; ++i) {
      obs::counter_add("hammer.count");
      obs::counter_add("hammer.weighted", 3);
      obs::gauge_set("hammer.gauge", static_cast<double>(i));
      obs::gauge_max("hammer.peak", static_cast<double>(t * kOps + i));
      obs::histogram_record("hammer.hist", static_cast<double>(i % 64));
    }
  });
  obs::MetricsRegistry::uninstall();

  EXPECT_EQ(reg.counter("hammer.count"), kThreads * kOps);
  EXPECT_EQ(reg.counter("hammer.weighted"), 3 * kThreads * kOps);
  // gauge_set keeps *a* last value — any thread's, but a real one.
  ASSERT_TRUE(reg.gauge("hammer.gauge").has_value());
  EXPECT_LT(*reg.gauge("hammer.gauge"), static_cast<double>(kOps));
  // gauge_max is exact: the global maximum survives interleaving.
  EXPECT_EQ(*reg.gauge("hammer.peak"),
            static_cast<double>(kThreads * kOps - 1));
  const std::optional<obs::HistogramData> h = reg.histogram("hammer.hist");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->count, kThreads * kOps);
  EXPECT_EQ(h->min, 0.0);
  EXPECT_EQ(h->max, 63.0);
}

TEST(ThreadingMetrics, ConcurrentReadersSeeMonotoneCounters) {
  obs::MetricsRegistry reg;
  reg.install();
  std::atomic<bool> done{false};
  std::uint64_t last = 0;
  bool monotone = true;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t now = reg.counter("mono.count");
      if (now < last) monotone = false;
      last = now;
    }
  });
  run_threads([&](unsigned) {
    for (int i = 0; i < 2000; ++i) obs::counter_add("mono.count");
  });
  done.store(true, std::memory_order_release);
  reader.join();
  obs::MetricsRegistry::uninstall();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(reg.counter("mono.count"), kThreads * 2000u);
}

// ------------------------------------------------------------ TraceSession

TEST(ThreadingTrace, NestedSpansAcrossThreadsStayBalanced) {
  obs::TraceSession session;
  session.install();
  constexpr int kIters = 200;
  run_threads([&](unsigned) {
    for (int i = 0; i < kIters; ++i) {
      obs::Span outer("threading.outer");
      {
        obs::Span mid("threading.mid");
        obs::Span inner("threading.inner");
      }
    }
  });
  obs::TraceSession::uninstall();

  EXPECT_EQ(session.size(), 3u * kThreads * kIters);
  EXPECT_TRUE(session.has_span("threading.outer"));
  EXPECT_TRUE(session.has_span("threading.inner"));
  // Depth is tracked per thread: outer spans sit at depth 0, mid at 1,
  // inner at 2, regardless of how threads interleave.
  for (const obs::TraceEvent& ev : session.events()) {
    const std::string name = ev.name;
    const std::uint32_t want =
        name == "threading.outer" ? 0u : (name == "threading.mid" ? 1u : 2u);
    ASSERT_EQ(ev.depth, want) << name;
    ASSERT_LT(ev.tid, kThreads + 2u);  // small dense thread indices
  }
}

// -------------------------------------------------------------- OrthoCache

TEST(ThreadingOrthoCache, CollidingGetOrBuildBuildsEachKeyOnce) {
  engine::OrthoCache cache;
  constexpr int kKeys = 6;
  constexpr int kIters = 50;
  std::atomic<std::uint64_t> builds{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<engine::OrthoCache::Ptr> first(kKeys);

  // Warm one reference pointer per key, serially, so threads can compare.
  for (int k = 0; k < kKeys; ++k)
    first[k] = cache.get_or_build("key" + std::to_string(k), [&] {
      builds.fetch_add(1, std::memory_order_relaxed);
      return layout::layout_hypercube(2 + (k % 3));
    });

  run_threads([&](unsigned t) {
    for (int i = 0; i < kIters; ++i) {
      const int k = static_cast<int>(t + i) % kKeys;
      bool hit = false;
      engine::OrthoCache::Ptr p =
          cache.get_or_build("key" + std::to_string(k),
                             [&] {
                               builds.fetch_add(1, std::memory_order_relaxed);
                               return layout::layout_hypercube(2 + (k % 3));
                             },
                             &hit);
      if (p != first[k] || !hit)
        mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(builds.load(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(mismatches.load(), 0u);
  const engine::CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.entries, static_cast<std::size_t>(kKeys));
}

TEST(ThreadingOrthoCache, StatsSnapshotIsMonotoneUnderContention) {
  engine::OrthoCache cache;
  cache.set_capacity(4);  // force eviction churn while workers hammer
  std::atomic<bool> done{false};

  // Reader: the documented CacheStats contract — every monotonic field is
  // non-decreasing between two snapshots taken from one thread, even while
  // builders and evictions race underneath.
  std::atomic<std::uint64_t> violations{0};
  std::thread reader([&] {
    engine::CacheStats prev = cache.stats();
    while (!done.load(std::memory_order_acquire)) {
      const engine::CacheStats now = cache.stats();
      if (now.hits < prev.hits || now.misses < prev.misses ||
          now.evictions < prev.evictions)
        violations.fetch_add(1, std::memory_order_relaxed);
      prev = now;
    }
  });

  run_threads([&](unsigned t) {
    for (int i = 0; i < 40; ++i) {
      const int k = static_cast<int>(t * 40 + i) % 12;  // > capacity keys
      cache.get_or_build("stats" + std::to_string(k),
                         [&] { return layout::layout_hypercube(2); });
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  const engine::CacheStats s = cache.stats();
  // Quiesced cross-field coherence: every lookup was a hit or a miss, the
  // entry count respects the bound, and eviction happened at all.
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * 40);
  EXPECT_LE(s.entries, 4u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.entries, cache.size());
}

// ---------------------------------------------------------- DiagnosticSink

TEST(ThreadingDiagnostics, ConcurrentReportsNeverLoseTotals) {
  DiagnosticSink sink(64);
  constexpr int kPerThread = 500;
  run_threads([&](unsigned t) {
    for (int i = 0; i < kPerThread; ++i) {
      Diagnostic d;
      d.code = Code::kPointCollision;
      // A mix of severities exercises the eviction path at capacity.
      d.severity = (t + i) % 3 == 0 ? Severity::kError : Severity::kWarning;
      sink.report(std::move(d));
    }
  });

  EXPECT_EQ(sink.total_errors() + sink.total_warnings(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.size(), 64u);  // exactly at capacity, never past it
  EXPECT_TRUE(sink.full());
  EXPECT_EQ(sink.size() + sink.dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.errors() + sink.warnings(), sink.size());
  EXPECT_TRUE(sink.has(Code::kPointCollision));
}

// -------------------------------------------------------------- CancelToken

TEST(ThreadingCancel, LatchPropagatesThroughTheTokenTree) {
  CancelToken root;
  CancelToken sweep(&root);
  std::vector<std::unique_ptr<CancelToken>> jobs;
  for (unsigned i = 0; i < kThreads; ++i)
    jobs.push_back(std::make_unique<CancelToken>(&sweep));

  std::atomic<unsigned> observed{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      while (!jobs[t]->tripped()) std::this_thread::yield();
      // The release/acquire latch guarantees the reason is visible here.
      EXPECT_STREQ(jobs[t]->reason(), "shutdown");
      observed.fetch_add(1, std::memory_order_relaxed);
    });
  root.cancel("shutdown");
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(observed.load(), kThreads);
  EXPECT_TRUE(sweep.tripped_flag_only() || sweep.tripped());
}

// -------------------------------------------------------------- SweepJournal

TEST(ThreadingJournal, ConcurrentRecordsAllLandIntact) {
  const std::string path = "test_threading_journal.mlvlj";
  std::remove(path.c_str());
  const api::FamilyRegistry& reg = api::FamilyRegistry::instance();
  constexpr int kPerThread = 40;
  {
    engine::SweepJournal journal(path);
    ASSERT_TRUE(journal.valid());
    run_threads([&](unsigned t) {
      for (int i = 0; i < kPerThread; ++i) {
        engine::JobResult r;
        r.spec = *reg.parse("hypercube(n=" +
                            std::to_string(2 + (t * kPerThread + i) % 9) +
                            ")");
        r.L = 2 + (t + static_cast<unsigned>(i)) % 60;
        r.ok = true;
        r.verdict = engine::JobVerdict::kOk;
        r.attempts = 1;
        r.nodes = t;
        r.edges = static_cast<std::uint64_t>(i);
        journal.record(r);
      }
    });
    EXPECT_EQ(journal.recorded(),
              static_cast<std::size_t>(kThreads) * kPerThread);
  }
  // Every line must parse back whole: interleaved writers would tear lines
  // without the journal's lock, and load() counts torn lines.
  std::optional<engine::SweepResume> resume = engine::SweepJournal::load(path);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->malformed_lines, 0u);
  EXPECT_GT(resume->done.size(), 0u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ MetricsSampler

TEST(ThreadingSampler, SamplesWhileHammeredAndStopsPromptly) {
  obs::MetricsRegistry reg;
  reg.install();
  obs::MetricsSampler sampler;
  sampler.start(reg, 1);
  run_threads([&](unsigned) {
    for (int i = 0; i < 1000; ++i) obs::counter_add("sampler.load");
  });
  sampler.stop();
  obs::MetricsRegistry::uninstall();
  EXPECT_FALSE(sampler.running());
  // t=0 snapshot plus the closing one, at minimum.
  EXPECT_GE(sampler.snapshots(), 2u);
  EXPECT_EQ(reg.counter("sampler.load"), kThreads * 1000u);
}

TEST(ThreadingSampler, StopIsPromptForLongIntervals) {
  obs::MetricsRegistry reg;
  reg.install();
  obs::MetricsSampler sampler;
  sampler.start(reg, 60'000);  // one-minute interval
  const auto t0 = std::chrono::steady_clock::now();
  sampler.stop();  // the condvar handshake must not wait the interval out
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  obs::MetricsRegistry::uninstall();
  EXPECT_LT(ms, 10'000.0);
}

// ------------------------------------------------- Parallel band checker

/// Band-parallel occupancy check under TSan: worker threads claim bands from
/// the shared cursor, report into one DiagnosticSink, and merge per-band
/// results. Every repeat and every worker count must produce byte-identical
/// diagnostics; any race in the scratch reuse or the merge is a TSan report.
TEST(ThreadingChecker, ParallelBandScanIsDeterministicUnderRepeats) {
  Graph g(16);
  LayoutGeometry geom;
  geom.num_layers = 2;
  geom.width = 12;
  geom.height = 24;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t y = 3 * i;
    g.add_edge(2 * i, 2 * i + 1);
    geom.boxes.push_back({0, y, 2, 2, 2 * i});
    geom.boxes.push_back({9, y, 2, 2, 2 * i + 1});
    geom.segs.push_back({1, y, 9, y, 1, i});
  }
  // Cross-band theft: edges 1 and 5 invade their neighbours' tracks.
  geom.segs.push_back({1, 0, 9, 0, 1, 1});
  geom.segs.push_back({1, 12, 9, 12, 1, 5});

  auto render = [](const DiagnosticSink& sink) {
    std::string out;
    for (const Diagnostic& d : sink.diagnostics()) out += d.to_string() + '\n';
    return out;
  };

  DiagnosticSink serial_sink(1024);
  CheckReport serial =
      Checker(g, geom, {.threads = 1, .band_rows = 3}).check(serial_sink);
  const std::string want = render(serial_sink);
  EXPECT_FALSE(serial.ok);

  for (int rep = 0; rep < 8; ++rep) {
    DiagnosticSink sink(1024);
    Checker checker(g, geom, {.threads = kThreads, .band_rows = 3});
    CheckReport r = checker.check(sink);
    ASSERT_EQ(r.ok, serial.ok) << "repeat " << rep;
    ASSERT_EQ(r.points, serial.points) << "repeat " << rep;
    ASSERT_EQ(render(sink), want) << "repeat " << rep;
  }
}

/// Independent Checker instances (each spawning its own band workers) are
/// safe to run concurrently — the only shared state is the installed
/// metrics registry, whose totals must come out exact.
TEST(ThreadingChecker, ConcurrentCheckersKeepExactMetricTotals) {
  obs::MetricsRegistry reg;
  reg.install();
  Orthogonal2Layer o = layout::layout_hypercube(3);
  MultilayerLayout ml = realize(o, {.L = 4});

  std::atomic<std::uint64_t> oks{0};
  std::atomic<std::uint64_t> bands{0};
  constexpr int kIters = 4;
  run_threads([&](unsigned) {
    for (int i = 0; i < kIters; ++i) {
      Checker checker(o.graph, ml.geom,
                      {.via_rule = ml.required_rule, .threads = 2});
      DiagnosticSink sink(64);
      CheckReport r = checker.check(sink);
      if (r.ok) oks.fetch_add(1, std::memory_order_relaxed);
      bands.fetch_add(r.bands_checked, std::memory_order_relaxed);
    }
  });
  obs::MetricsRegistry::uninstall();

  EXPECT_EQ(oks.load(), static_cast<std::uint64_t>(kThreads) * kIters);
  // Every pass scanned every band, and the shared counter saw all of them.
  EXPECT_EQ(reg.counter("check.bands.dirty"), bands.load());
  EXPECT_EQ(reg.counter("check.bands.clean"), 0u);
}

// ------------------------------------------------- Mutex/CondVar primitives

TEST(ThreadingPrimitives, MutexCondVarHandshake) {
  Mutex mu;
  CondVar cv;
  int stage = 0;  // guarded by mu
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (stage < kThreads) cv.wait(mu);
    stage = -1;
  });
  for (unsigned t = 0; t < kThreads; ++t) {
    {
      MutexLock lock(&mu);
      ++stage;
    }
    cv.notify_one();
  }
  consumer.join();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, -1);
}

}  // namespace
}  // namespace mlvl
