#include <gtest/gtest.h>

#include "analysis/routing.hpp"
#include "topology/complete.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/product.hpp"
#include "topology/ring.hpp"

namespace mlvl {
namespace {

using topo::make_complete;
using topo::make_generalized_hypercube;
using topo::make_hypercube;
using topo::make_kary_ncube;
using topo::make_path;
using topo::make_product;
using topo::make_ring;

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (std::uint32_t d : analysis::hop_distances(g, u))
      best = std::max(best, d);
  return best;
}

TEST(Ring, Structure) {
  Graph g = make_ring(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Path, Structure) {
  Graph g = make_path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(diameter(g), 4u);
}

TEST(KaryNcube, TorusStructure) {
  Graph g = make_kary_ncube(4, 3);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_edges(), 64u * 3);  // degree 2n = 6
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(diameter(g), 3u * 2);  // n * floor(k/2)
}

TEST(KaryNcube, MeshStructure) {
  Graph g = make_kary_ncube(4, 2, /*wrap=*/false);
  EXPECT_EQ(g.num_edges(), 2u * 4 * 3);  // 2 * k^(n-1) * (k-1) * n / n ... 24
  EXPECT_FALSE(g.is_regular());
  EXPECT_EQ(diameter(g), 6u);  // n * (k-1)
}

TEST(KaryNcube, K2MatchesHypercube) {
  Graph a = make_kary_ncube(2, 5);
  Graph b = make_hypercube(5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(diameter(a), 5u);
}

TEST(Hypercube, Structure) {
  Graph g = make_hypercube(6);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_EQ(g.num_edges(), 6u * 32);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Complete, Structure) {
  Graph g = make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Ghc, UniformStructure) {
  Graph g = make_generalized_hypercube(4, 3);
  EXPECT_EQ(g.num_nodes(), 64u);
  // Degree n(r-1) = 9; edges = N * 9 / 2.
  EXPECT_EQ(g.num_edges(), 64u * 9 / 2);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(diameter(g), 3u);  // one hop per dimension
}

TEST(Ghc, MixedRadix) {
  Graph g = make_generalized_hypercube({2, 3, 4});
  EXPECT_EQ(g.num_nodes(), 24u);
  // Degree = (2-1) + (3-1) + (4-1) = 6.
  EXPECT_EQ(g.num_edges(), 24u * 6 / 2);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Ghc, Radix2IsHypercube) {
  Graph a = make_generalized_hypercube(2, 6);
  Graph b = make_hypercube(6);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(diameter(a), 6u);
}

TEST(Product, RingTimesRingIsTorus) {
  Graph p = make_product(make_ring(5), make_ring(5));
  Graph t = make_kary_ncube(5, 2);
  EXPECT_EQ(p.num_nodes(), t.num_nodes());
  EXPECT_EQ(p.num_edges(), t.num_edges());
  EXPECT_EQ(diameter(p), diameter(t));
}

TEST(Product, DegreesAdd) {
  Graph p = make_product(make_complete(4), make_ring(6));
  EXPECT_EQ(p.num_nodes(), 24u);
  EXPECT_TRUE(p.is_regular());
  EXPECT_EQ(p.degree(0), 3u + 2u);
}

TEST(Validation, ArgumentChecks) {
  EXPECT_THROW(make_ring(1), std::invalid_argument);
  EXPECT_THROW(make_kary_ncube(1, 2), std::invalid_argument);
  EXPECT_THROW(make_hypercube(0), std::invalid_argument);
  EXPECT_THROW(make_complete(1), std::invalid_argument);
  EXPECT_THROW(make_generalized_hypercube({}), std::invalid_argument);
  EXPECT_THROW(make_generalized_hypercube({1, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace mlvl
