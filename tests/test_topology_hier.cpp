#include <gtest/gtest.h>

#include <map>

#include "analysis/routing.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/folded_hypercube.hpp"
#include "topology/hsn.hpp"
#include "topology/isn.hpp"
#include "topology/kary_cluster.hpp"
#include "topology/reduced_hypercube.hpp"
#include "topology/ring.hpp"

namespace mlvl {
namespace {

TEST(Butterfly, WrappedStructure) {
  topo::Butterfly bf = topo::make_wrapped_butterfly(4);
  EXPECT_EQ(bf.graph.num_nodes(), 16u * 4);
  // Wrapped butterfly is 4-regular: edges = 2N.
  EXPECT_EQ(bf.graph.num_edges(), 2u * bf.graph.num_nodes());
  EXPECT_TRUE(bf.graph.is_regular());
  EXPECT_TRUE(bf.graph.is_connected());
}

TEST(Butterfly, OrdinaryStructure) {
  topo::Butterfly bf = topo::make_butterfly(3);
  EXPECT_EQ(bf.graph.num_nodes(), 8u * 4);
  EXPECT_EQ(bf.graph.num_edges(), 2u * 8 * 3);  // 2R per level transition
  EXPECT_FALSE(bf.graph.is_regular());          // end levels have degree 2
  EXPECT_TRUE(bf.graph.is_connected());
}

TEST(Butterfly, WrappedK2HasNoParallelEdges) {
  topo::Butterfly bf = topo::make_wrapped_butterfly(2);
  EXPECT_FALSE(bf.graph.has_parallel_edges());
  EXPECT_TRUE(bf.graph.is_connected());
}

TEST(Ccc, Structure) {
  topo::Ccc c = topo::make_ccc(4);
  EXPECT_EQ(c.graph.num_nodes(), 4u * 16);
  // 3-regular: cycle degree 2 + one cube edge.
  EXPECT_TRUE(c.graph.is_regular());
  EXPECT_EQ(c.graph.degree(0), 3u);
  EXPECT_TRUE(c.graph.is_connected());
}

TEST(Ccc, SmallestCase) {
  topo::Ccc c = topo::make_ccc(2);
  EXPECT_EQ(c.graph.num_nodes(), 8u);
  EXPECT_TRUE(c.graph.is_connected());
  EXPECT_FALSE(c.graph.has_parallel_edges());
}

TEST(ReducedHypercube, Structure) {
  topo::ReducedHypercube rh = topo::make_reduced_hypercube(4);
  EXPECT_EQ(rh.graph.num_nodes(), 4u * 16);
  // Degree: log2(4)=2 intra + 1 cube edge = 3.
  EXPECT_TRUE(rh.graph.is_regular());
  EXPECT_EQ(rh.graph.degree(0), 3u);
  EXPECT_TRUE(rh.graph.is_connected());
}

TEST(ReducedHypercube, RejectsNonPowerOfTwo) {
  EXPECT_THROW(topo::make_reduced_hypercube(3), std::invalid_argument);
}

TEST(FoldedHypercube, Structure) {
  Graph g = topo::make_folded_hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32u);
  EXPECT_EQ(g.num_edges(), 5u * 16 + 16);  // hypercube + N/2 diameter links
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 6u);
  // Diameter halves (ceil(n/2)).
  std::uint32_t diam = 0;
  for (std::uint32_t d : analysis::hop_distances(g, 0)) diam = std::max(diam, d);
  EXPECT_EQ(diam, 3u);
}

TEST(EnhancedCube, StructureAndDeterminism) {
  Graph a = topo::make_enhanced_cube(5, 7);
  Graph b = topo::make_enhanced_cube(5, 7);
  Graph c = topo::make_enhanced_cube(5, 8);
  EXPECT_EQ(a.num_edges(), 5u * 16 + 32);  // hypercube + N extra links
  ASSERT_EQ(a.num_edges(), b.num_edges());
  bool same = true, diff = false;
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    same = same && a.edge(e) == b.edge(e);
    diff = diff || !(a.edge(e) == c.edge(e));
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(diff);
}

TEST(Hsn, QuotientIsGhcWithSingleLinks) {
  // 3-level HSN over a 4-node ring: quotient must be a 2-D radix-4 GHC with
  // exactly one link per neighbouring cluster pair.
  topo::Hsn h = topo::make_hsn(3, topo::make_ring(4));
  EXPECT_EQ(h.graph.num_nodes(), 64u);
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> quotient;
  for (EdgeId e = h.nucleus_edges; e < h.graph.num_edges(); ++e) {
    const Edge& ed = h.graph.edge(e);
    const NodeId cu = ed.u / h.r, cv = ed.v / h.r;
    EXPECT_NE(cu, cv);
    auto key = std::minmax(cu, cv);
    ++quotient[{key.first, key.second}];
  }
  // 16 clusters, 2 dims radix 4: edges = 16 * 2*(4-1) / 2 = 48 pairs.
  EXPECT_EQ(quotient.size(), 48u);
  for (const auto& [pair, count] : quotient) EXPECT_EQ(count, 1u);
  EXPECT_TRUE(h.graph.is_connected());
}

TEST(Hsn, SingleLevelIsNucleus) {
  topo::Hsn h = topo::make_hsn(1, topo::make_ring(5));
  EXPECT_EQ(h.graph.num_nodes(), 5u);
  EXPECT_EQ(h.graph.num_edges(), 5u);
}

TEST(Hhn, HypercubeNucleus) {
  topo::Hsn h = topo::make_hhn(2, 3);  // 8-node hypercube nucleus, 2 levels
  EXPECT_EQ(h.graph.num_nodes(), 64u);
  EXPECT_EQ(h.nucleus_edges, 8u * 12);
  EXPECT_TRUE(h.graph.is_connected());
}

TEST(Isn, QuotientHasDoubleLinks) {
  topo::Isn isn = topo::make_isn(3, 3);  // 9 clusters of 2 stages x 3
  const std::uint32_t cluster_size = isn.stages() * isn.r;
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> quotient;
  for (const Edge& ed : isn.graph.edges()) {
    const NodeId cu = ed.u / cluster_size, cv = ed.v / cluster_size;
    if (cu == cv) continue;
    auto key = std::minmax(cu, cv);
    ++quotient[{key.first, key.second}];
  }
  // Quotient 2-D radix-3 GHC: 9 * 2*(3-1)/2 = 18 pairs, 2 links each.
  EXPECT_EQ(quotient.size(), 18u);
  for (const auto& [pair, count] : quotient) EXPECT_EQ(count, 2u);
  EXPECT_TRUE(isn.graph.is_connected());
}

TEST(KaryCluster, HypercubeClusters) {
  topo::KaryCluster kc =
      topo::make_kary_cluster(3, 2, 4, topo::ClusterKind::kHypercube);
  EXPECT_EQ(kc.graph.num_nodes(), 9u * 4);
  // Edges: 9 clusters * 4 (2-cube) + quotient torus edges 9*2.
  EXPECT_EQ(kc.graph.num_edges(), 9u * 4 + 18u);
  EXPECT_TRUE(kc.graph.is_connected());
}

TEST(KaryCluster, CompleteClusters) {
  topo::KaryCluster kc =
      topo::make_kary_cluster(3, 2, 5, topo::ClusterKind::kComplete);
  EXPECT_EQ(kc.graph.num_edges(), 9u * 10 + 18u);
  EXPECT_TRUE(kc.graph.is_connected());
}

TEST(KaryCluster, RejectsBadClusterSize) {
  EXPECT_THROW(topo::make_kary_cluster(3, 2, 6, topo::ClusterKind::kHypercube),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlvl
